/**
 * The declared-knob-schema layer: every registered component declares
 * its knobs; misspelled or wrongly-typed keys in forwarded subtrees
 * fail loudly naming the key and the valid knobs; declared knobs
 * round-trip through fromConfig/toConfig; the Runner fingerprint
 * captures effective (schema-default-expanded) knob values; --knobs
 * output covers every built-in component; and Config's consumed-key
 * tracking catches top-level typos.
 */

#include <gtest/gtest.h>

#include "common/knobs.hh"
#include "prefetch/factory.hh"
#include "prefetch/next_line.hh"
#include "sim/runner.hh"
#include "sim/system_config.hh"

using namespace tlpsim;

namespace
{

const char *const kPrefetchers[] = {"next_line", "ipcp", "berti", "spp"};
const char *const kFilters[] = {"ppf", "slp"};
const char *const kOffchip[] = {"flp", "hermes"};

/** Expect @p fn to throw a ConfigError mentioning every @p needle. */
template <typename Fn>
void
expectConfigError(Fn &&fn, std::initializer_list<const char *> needles)
{
    try {
        fn();
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        std::string msg = e.what();
        for (const char *needle : needles)
            EXPECT_NE(msg.find(needle), std::string::npos)
                << "missing '" << needle << "' in: " << msg;
    }
}

} // namespace

// --- every built-in declares a schema ---------------------------------------

TEST(KnobSchema, EveryBuiltinComponentDeclaresKnobs)
{
    for (const char *name : kPrefetchers) {
        const KnobSchema *ks = prefetcherRegistry().knobs(name);
        ASSERT_NE(ks, nullptr) << name;
        EXPECT_FALSE(ks->specs().empty()) << name;
        for (const KnobSpec &s : ks->specs())
            EXPECT_FALSE(s.description.empty()) << name << "." << s.name;
    }
    for (const char *name : kFilters)
        ASSERT_NE(filterRegistry().knobs(name), nullptr) << name;
    for (const char *name : kOffchip)
        ASSERT_NE(offchipRegistry().knobs(name), nullptr) << name;
}

TEST(KnobSchema, DuplicateKnobNameIsRejected)
{
    EXPECT_THROW((KnobSchema{{"degree", 1u, "a"}, {"degree", 2u, "b"}}),
                 ConfigError);
}

// --- registry build()-time validation ---------------------------------------

TEST(KnobSchema, BuildRejectsUndeclaredKnobNamingValidOnes)
{
    Config cfg;
    cfg.set("degre", 2);
    expectConfigError(
        [&] { prefetcherRegistry().build("next_line", cfg); },
        {"degre", "prefetcher 'next_line'", "degree"});
}

TEST(KnobSchema, BuildRejectsWrongTypeNamingValidKnobs)
{
    Config cfg;
    cfg.set("degree", "lots");
    expectConfigError(
        [&] { prefetcherRegistry().build("next_line", cfg); },
        {"degree", "lots", "unsigned", "declared knobs"});
}

TEST(KnobSchema, SchemaLessRegistrationStaysPermissive)
{
    // Out-of-tree components that have not declared knobs keep the old
    // forward-everything behaviour (and --knobs marks them undeclared).
    if (!prefetcherRegistry().contains("test_undeclared")) {
        prefetcherRegistry().add("test_undeclared", [](const Config &cfg) {
            return std::make_unique<NextLinePrefetcher>(
                static_cast<unsigned>(cfg.getUnsigned("whatever", 1)));
        });
    }
    Config cfg;
    cfg.set("whatever", 3);
    cfg.set("ignored_key", "x");
    EXPECT_NE(prefetcherRegistry().build("test_undeclared", cfg), nullptr);
    EXPECT_EQ(prefetcherRegistry().knobs("test_undeclared"), nullptr);
    EXPECT_NE(knobReference("test_undeclared").find("not declared"),
              std::string::npos);
}

TEST(KnobSchema, KnobsReaderCatchesSchemaDrift)
{
    // A builder reading a knob its schema never declared is a bug the
    // first build catches, not a silent default.
    const KnobSchema &schema = *prefetcherRegistry().knobs("next_line");
    Config empty;
    Knobs k(empty, schema, "prefetcher 'next_line'");
    EXPECT_EQ(k.u32("degree"), 1u);
    EXPECT_THROW(k.u32("degre"), ConfigError);
    // Declared-type mismatch is caught the same way.
    EXPECT_THROW(k.i32("degree"), ConfigError);
}

// --- forwarded-subtree validation in fromConfig -----------------------------

TEST(KnobSchema, MisspelledOffchipSubtreeKeyFailsNamingKnobs)
{
    Config c = Config::parse("scheme = hermes\n"
                             "scheme.offchip.tau_hgih = 1\n");
    expectConfigError(
        [&] { SystemConfig::fromConfig(c); },
        {"scheme.offchip.tau_hgih", "off-chip predictor 'hermes'",
         "tau_high", "tau_low", "policy"});
}

TEST(KnobSchema, WrongTypedSubtreeValueFailsNamingKnobs)
{
    Config c = Config::parse("scheme = tlp\n"
                             "scheme.l1_filter.probation_period = soon\n");
    expectConfigError(
        [&] { SystemConfig::fromConfig(c); },
        {"scheme.l1_filter.probation_period", "soon", "unsigned",
         "prefetch filter 'slp'", "tau_pref"});
}

TEST(KnobSchema, OutOfRangeValueFailsUpFrontAtDeclaredWidth)
{
    // 2^32 parses as a 64-bit integer but the builder extracts 32-bit:
    // the up-front check must validate at the declared width, before
    // any simulation starts, naming the key.
    Config c = Config::parse("l1d.prefetcher.cs_degree = 4294967296\n");
    expectConfigError([&] { SystemConfig::fromConfig(c); },
                      {"l1d.prefetcher.cs_degree", "4294967296",
                       "32-bit", "prefetcher 'ipcp'"});
}

TEST(KnobSchema, EnumeratedStringKnobRejectsUnknownChoiceUpFront)
{
    Config c = Config::parse("scheme = hermes\n"
                             "scheme.offchip.policy = banana\n");
    expectConfigError([&] { SystemConfig::fromConfig(c); },
                      {"scheme.offchip.policy", "banana", "one of",
                       "immediate", "selective"});
}

TEST(KnobSchema, PrefetcherSubtreeTypoFailsNamingKnobs)
{
    Config c = Config::parse("l1d.prefetcher.cs_degre = 8\n");
    expectConfigError([&] { SystemConfig::fromConfig(c); },
                      {"l1d.prefetcher.cs_degre", "prefetcher 'ipcp'",
                       "cs_degree"});
}

TEST(KnobSchema, SubtreeUnderEmptyPrefetcherSlotIsRejected)
{
    Config c = Config::parse("l2.prefetcher = none\n"
                             "l2.prefetcher.aggressive = true\n");
    expectConfigError([&] { SystemConfig::fromConfig(c); },
                      {"l2.prefetcher.aggressive", "none"});
}

TEST(KnobSchema, AllOffendersAreCollectedIntoOneError)
{
    Config c = Config::parse("scheme = tlp\n"
                             "scheme.offchip.tau_hgih = 1\n"
                             "scheme.l1_filter.probation_perod = 3\n");
    expectConfigError(
        [&] { SystemConfig::fromConfig(c); },
        {"scheme.offchip.tau_hgih", "scheme.l1_filter.probation_perod"});
}

TEST(KnobSchema, ValidSubtreeKeysStillReachTheBuilders)
{
    // The legitimate sweep path must be untouched by validation.
    Config c = Config::parse("scheme = tlp\n"
                             "scheme.offchip.tau_high = 12\n"
                             "l1d.prefetcher.cs_degree = 2\n");
    SystemConfig cfg = SystemConfig::fromConfig(c);
    EXPECT_EQ(cfg.scheme.offchip_params.getString("tau_high"), "12");
    EXPECT_EQ(cfg.scheme.offchipBuildConfig().getString("tau_high"), "12");
    EXPECT_EQ(cfg.l1PrefetcherBuildConfig().getString("cs_degree"), "2");
}

// --- declared knobs round-trip through fromConfig/toConfig ------------------

TEST(KnobSchema, PrefetcherKnobsRoundTrip)
{
    for (const char *name : kPrefetchers) {
        const KnobSchema *ks = prefetcherRegistry().knobs(name);
        ASSERT_NE(ks, nullptr) << name;
        Config c;
        c.set("l1d.prefetcher", name);
        Config defs = ks->defaults();
        for (const std::string &k : defs.keys())
            c.set("l1d.prefetcher." + k, defs.getString(k));

        SystemConfig cfg = SystemConfig::fromConfig(c);
        Config dump = cfg.toConfig();
        for (const std::string &k : defs.keys()) {
            EXPECT_EQ(dump.getString("l1d.prefetcher." + k),
                      defs.getString(k))
                << name << "." << k;
        }
        SystemConfig rebuilt
            = SystemConfig::fromConfig(Config::parse(dump.serialize()));
        EXPECT_EQ(rebuilt.l1_pf_params, cfg.l1_pf_params) << name;
        EXPECT_EQ(experiment::configKey(rebuilt), experiment::configKey(cfg))
            << name;
    }
}

TEST(KnobSchema, FilterAndOffchipKnobsRoundTrip)
{
    auto roundTrip = [](const Config &c, const char *label) {
        SystemConfig cfg = SystemConfig::fromConfig(c);
        SystemConfig rebuilt = SystemConfig::fromConfig(
            Config::parse(cfg.toConfig().serialize()));
        EXPECT_EQ(rebuilt.scheme, cfg.scheme) << label;
        EXPECT_EQ(experiment::configKey(rebuilt), experiment::configKey(cfg))
            << label;
    };
    for (const char *name : kFilters) {
        const KnobSchema *ks = filterRegistry().knobs(name);
        ASSERT_NE(ks, nullptr) << name;
        Config c;
        c.set("scheme.l2_filter", name);
        Config defs = ks->defaults();
        for (const std::string &k : defs.keys())
            c.set("scheme.l2_filter." + k, defs.getString(k));
        roundTrip(c, name);
    }
    for (const char *name : kOffchip) {
        const KnobSchema *ks = offchipRegistry().knobs(name);
        ASSERT_NE(ks, nullptr) << name;
        Config c;
        c.set("scheme.offchip", name);
        c.set("scheme.offchip_policy", "immediate");
        Config defs = ks->defaults();
        for (const std::string &k : defs.keys())
            c.set("scheme.offchip." + k, defs.getString(k));
        roundTrip(c, name);
    }
}

// --- the fingerprint captures effective knob values -------------------------

TEST(KnobSchema, FingerprintExpandsSchemaDefaults)
{
    SystemConfig cfg = SystemConfig::cascadeLake(1);
    cfg.scheme = SchemeConfig::hermes();
    std::string key = experiment::configKey(cfg);
    // Knobs the user never set appear at their effective values: the
    // named preset knob (tau_high = 4) and a pure schema default
    // (tau_low), so a changed component default changes the fingerprint.
    EXPECT_NE(key.find("scheme.offchip.tau_high = 4"), std::string::npos)
        << key;
    EXPECT_NE(key.find("scheme.offchip.tau_low = "), std::string::npos)
        << key;
    EXPECT_NE(key.find("l1d.prefetcher.cs_degree = 4"), std::string::npos)
        << key;
    // The per-cpu stat name is construction detail, not design point.
    EXPECT_EQ(key.find("scheme.offchip.name"), std::string::npos) << key;
}

TEST(KnobSchema, EffectiveConfigIsIdempotentForEveryPreset)
{
    for (const std::string &name : SchemeConfig::names()) {
        SystemConfig cfg = SystemConfig::cascadeLake(1);
        cfg.scheme = SchemeConfig::fromName(name);
        Config eff = cfg.effectiveConfig();
        SystemConfig rebuilt
            = SystemConfig::fromConfig(Config::parse(eff.serialize(), name));
        EXPECT_EQ(rebuilt.effectiveConfig(), eff) << name;
    }
}

// --- --knobs reference ------------------------------------------------------

TEST(KnobReference, CoversEveryBuiltinComponent)
{
    std::string all = knobReference();
    for (const char *name : kPrefetchers)
        EXPECT_NE(all.find(std::string("prefetcher ") + name),
                  std::string::npos)
            << name;
    for (const char *name : kFilters)
        EXPECT_NE(all.find(std::string("prefetch filter ") + name),
                  std::string::npos)
            << name;
    for (const char *name : kOffchip)
        EXPECT_NE(all.find(std::string("off-chip predictor ") + name),
                  std::string::npos)
            << name;
    // Spot-check knob lines made it through.
    EXPECT_NE(all.find("tau_accept"), std::string::npos);
    EXPECT_NE(all.find("probation_period"), std::string::npos);
}

TEST(KnobReference, FiltersToOneComponent)
{
    std::string hermes = knobReference("hermes");
    EXPECT_NE(hermes.find("tau_high"), std::string::npos);
    EXPECT_EQ(hermes.find("berti"), std::string::npos);
    expectConfigError([&] { knobReference("athena"); },
                      {"athena", "berti", "ppf", "hermes"});
}

// --- Config consumed-key tracking -------------------------------------------

TEST(ConfigConsumed, GettersAndSubMarkKeys)
{
    Config c = Config::parse("a = 1\nb.x = 2\nb.y = 3\nstray = 4\n");
    EXPECT_EQ(c.unconsumedKeys().size(), 4u);
    c.getInt("a", 0);
    c.sub("b");
    std::vector<std::string> stray = c.unconsumedKeys();
    ASSERT_EQ(stray.size(), 1u);
    EXPECT_EQ(stray.front(), "stray");
    c.getInt("stray", 0);
    EXPECT_TRUE(c.unconsumedKeys().empty());
    // has() probes without consuming; set() resets the mark.
    c.set("a", 5);
    EXPECT_EQ(c.unconsumedKeys(), std::vector<std::string>{"a"});
    c.has("a");
    EXPECT_EQ(c.unconsumedKeys().size(), 1u);
}

TEST(ConfigConsumed, EqualityIgnoresConsumedMarks)
{
    Config a = Config::parse("k = 1\n");
    Config b = Config::parse("k = 1\n");
    a.getInt("k", 0);
    EXPECT_EQ(a, b);
}
