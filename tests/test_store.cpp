/**
 * Tests for the crash-safe persistent result store: content addressing
 * and shard partitioning, bit-exact SimResult serialization, the
 * durability contract (truncated / bit-flipped / mis-keyed rows are
 * quarantined and recomputed, never silently served), concurrent
 * writers on one store directory, and the Runner integration — a warm
 * store serves every point without simulating and reproduces the cold
 * run's results bit for bit, while a watchdog timeout becomes a
 * structured failure row that a later (more generous) run retries.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/watchdog.hh"
#include "sim/runner.hh"
#include "store/result_store.hh"
#include "workloads/workload.hh"

using namespace tlpsim;
using namespace tlpsim::experiment;
using namespace tlpsim::store;
namespace fs = std::filesystem;

namespace
{

/** Fresh per-test store directory under the gtest temp root. */
std::string
freshDir(const std::string &name)
{
    fs::path dir = fs::path(::testing::TempDir()) / ("tlpsim_" + name);
    fs::remove_all(dir);
    return dir.string();
}

/** A SimResult exercising every serialized field, with doubles chosen
 *  to need the full shortest-round-trip representation. */
SimResult
sampleResult()
{
    SimResult r;
    r.scheme = "tlp";
    r.num_cores = 2;
    r.sim_instrs = 1'000'000;
    r.hit_cycle_cap = true;
    r.instrs = {1'000'000, 987'654};
    r.ipc = {0.1, 1.0 / 3.0};
    r.warmup_end_cycle = {123'456, 0};
    r.window_cycles = {9'999'999, 42};
    r.stats = {{"l1d.miss", 123}, {"dram.tx", 0},
               {"llc.hit", 18'446'744'073'709'551'615ull}};
    return r;
}

void
expectSameResult(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.scheme, b.scheme);
    EXPECT_EQ(a.num_cores, b.num_cores);
    EXPECT_EQ(a.sim_instrs, b.sim_instrs);
    EXPECT_EQ(a.hit_cycle_cap, b.hit_cycle_cap);
    EXPECT_EQ(a.instrs, b.instrs);
    EXPECT_EQ(a.ipc, b.ipc);   // element-wise operator==: bit-exact
    EXPECT_EQ(a.warmup_end_cycle, b.warmup_end_cycle);
    EXPECT_EQ(a.window_cycles, b.window_cycles);
    EXPECT_EQ(a.stats, b.stats);
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), {});
}

void
writeFile(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

} // namespace

// ---------------------------------------------------------- addressing

TEST(StoreFingerprint, StableAndDistinct)
{
    EXPECT_EQ(fingerprint64("abc"), fingerprint64("abc"));
    EXPECT_NE(fingerprint64("abc"), fingerprint64("abd"));
    // Fixed-width lowercase hex: usable as a filename stem everywhere.
    std::string hex = fingerprintHex("abc");
    EXPECT_EQ(hex.size(), 16u);
    EXPECT_EQ(hex.find_first_not_of("0123456789abcdef"), std::string::npos);
}

TEST(StoreShard, PartitionIsDeterministicAndComplete)
{
    const unsigned shards = 4;
    std::set<unsigned> seen;
    for (int i = 0; i < 256; ++i) {
        std::string key = "point-" + std::to_string(i);
        unsigned s = shardOf(key, shards);
        EXPECT_LT(s, shards);
        EXPECT_EQ(s, shardOf(key, shards));   // stable
        seen.insert(s);
        EXPECT_EQ(shardOf(key, 1), 0u);       // unsharded owns everything
        EXPECT_EQ(shardOf(key, 0), 0u);
    }
    // 256 keys across 4 fingerprint-hash shards: every shard gets work.
    EXPECT_EQ(seen.size(), shards);
}

TEST(StoreShard, ParseShardSpec)
{
    ShardSpec s = parseShardSpec("2/8");
    EXPECT_EQ(s.index, 2u);
    EXPECT_EQ(s.count, 8u);
    EXPECT_TRUE(s.sharded());
    EXPECT_FALSE(parseShardSpec("0/1").sharded());
    EXPECT_THROW(parseShardSpec(""), ConfigError);
    EXPECT_THROW(parseShardSpec("3"), ConfigError);
    EXPECT_THROW(parseShardSpec("4/4"), ConfigError);   // i must be < N
    EXPECT_THROW(parseShardSpec("1/0"), ConfigError);
    EXPECT_THROW(parseShardSpec("a/b"), ConfigError);
    EXPECT_THROW(parseShardSpec("1/2/3"), ConfigError);
}

// ------------------------------------------------------- serialization

TEST(StoreSerialize, SimResultRoundTripsBitExact)
{
    SimResult r = sampleResult();
    SimResult back = simResultFromConfig(simResultToConfig(r));
    expectSameResult(r, back);
}

TEST(StoreSerialize, EmptyVectorsRoundTrip)
{
    SimResult r;
    r.scheme = "baseline";
    SimResult back = simResultFromConfig(simResultToConfig(r));
    expectSameResult(r, back);
    EXPECT_TRUE(back.ipc.empty());
    EXPECT_TRUE(back.stats.empty());
}

// ----------------------------------------------------------- store I/O

TEST(ResultStore, SaveThenLoadHit)
{
    ResultStore st(freshDir("save_load"));
    const std::string key = "1c|w|some=config\n";

    EXPECT_FALSE(st.load(key).has_value());   // cold miss
    Config row = simResultToConfig(sampleResult());
    row.set(kStatusKey, kStatusOk);
    st.save(key, row);
    EXPECT_TRUE(fs::exists(st.rowPath(key)));

    auto loaded = st.load(key);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->getString(kStatusKey, ""), kStatusOk);
    expectSameResult(sampleResult(), simResultFromConfig(*loaded));

    auto c = st.counters();
    EXPECT_EQ(c.hits, 1u);
    EXPECT_EQ(c.misses, 1u);
    EXPECT_EQ(c.saved, 1u);
    EXPECT_EQ(c.quarantined, 0u);
    EXPECT_EQ(st.okRowCount(), 1u);
}

TEST(ResultStore, TruncatedRowQuarantinedAndRecomputed)
{
    ResultStore st(freshDir("truncated"));
    const std::string key = "1c|w|k=v\n";
    Config row = simResultToConfig(sampleResult());
    row.set(kStatusKey, kStatusOk);
    st.save(key, row);

    // A crash mid-write of a *non-atomic* store would leave exactly
    // this: a row cut short. Ours only sees it via external tampering.
    std::string bytes = readFile(st.rowPath(key));
    writeFile(st.rowPath(key), bytes.substr(0, bytes.size() / 2));

    EXPECT_FALSE(st.load(key).has_value());
    EXPECT_EQ(st.counters().quarantined, 1u);
    EXPECT_FALSE(fs::exists(st.rowPath(key)));   // moved aside, not left

    // Self-healing: recompute (here: re-save) and the hit is back.
    st.save(key, row);
    auto again = st.load(key);
    ASSERT_TRUE(again.has_value());
    expectSameResult(sampleResult(), simResultFromConfig(*again));
}

TEST(ResultStore, BitFlippedRowQuarantined)
{
    ResultStore st(freshDir("bitflip"));
    const std::string key = "1c|w|k=v\n";
    Config row = simResultToConfig(sampleResult());
    row.set(kStatusKey, kStatusOk);
    st.save(key, row);

    std::string bytes = readFile(st.rowPath(key));
    bytes[bytes.size() - 3] ^= 0x40;   // flip a bit inside the payload
    writeFile(st.rowPath(key), bytes);

    EXPECT_FALSE(st.load(key).has_value());
    EXPECT_EQ(st.counters().quarantined, 1u);
    // The bad row is preserved in quarantine/ for post-mortems.
    std::size_t quarantined_files = 0;
    for (const auto &e :
         fs::directory_iterator(fs::path(st.dir()) / "quarantine"))
        quarantined_files += e.is_regular_file() ? 1 : 0;
    EXPECT_EQ(quarantined_files, 1u);
}

TEST(ResultStore, GarbageRowQuarantined)
{
    ResultStore st(freshDir("garbage"));
    const std::string key = "1c|w|k=v\n";
    writeFile(st.rowPath(key), "not a row at all");
    EXPECT_FALSE(st.load(key).has_value());
    EXPECT_EQ(st.counters().quarantined, 1u);
}

TEST(ResultStore, KeyMismatchQuarantined)
{
    // A fingerprint collision (or a mis-copied rows/ dir) puts a valid,
    // checksummed row of the *wrong point* under a key's path. It must
    // read as a miss, never as that point's result.
    ResultStore st(freshDir("collision"));
    const std::string key_a = "1c|alpha|k=v\n";
    const std::string key_b = "1c|beta|k=v\n";
    Config row = simResultToConfig(sampleResult());
    row.set(kStatusKey, kStatusOk);
    st.save(key_a, row);
    fs::copy_file(st.rowPath(key_a), st.rowPath(key_b));

    EXPECT_FALSE(st.load(key_b).has_value());
    EXPECT_EQ(st.counters().quarantined, 1u);
    EXPECT_TRUE(st.load(key_a).has_value());   // the real row is untouched
}

TEST(ResultStore, StaleTempFilesSweptOnOpen)
{
    std::string dir = freshDir("sweep");
    {
        ResultStore st(dir);
        // Simulate a writer killed between temp-write and rename.
        writeFile((fs::path(dir) / "rows" / "deadbeef.row.tmp.123.0")
                      .string(),
                  "partial");
    }
    ResultStore st(dir);   // reopen sweeps the inert temp file
    EXPECT_FALSE(
        fs::exists(fs::path(dir) / "rows" / "deadbeef.row.tmp.123.0"));
}

TEST(ResultStore, ConcurrentWritersProduceOnlyCleanRows)
{
    // Two independent ResultStore instances on one directory stand in
    // for two processes (each has its own mutex; only the atomic rename
    // coordinates them — exactly the two-shard / two-host situation).
    std::string dir = freshDir("concurrent");
    ResultStore a(dir);
    ResultStore b(dir);

    const int kKeys = 64;
    auto key_of = [](int i) { return "1c|w" + std::to_string(i) + "|k=v\n"; };
    auto writer = [&](ResultStore &st) {
        for (int i = 0; i < kKeys; ++i) {
            Config row = simResultToConfig(sampleResult());
            row.set(kStatusKey, kStatusOk);
            row.set("writer_tag", i);   // differing payloads per key are
            st.save(key_of(i), row);    // fine: either rename may win
        }
    };
    std::thread ta(writer, std::ref(a));
    std::thread tb(writer, std::ref(b));
    ta.join();
    tb.join();

    ResultStore check(dir);
    for (int i = 0; i < kKeys; ++i) {
        auto row = check.load(key_of(i));
        ASSERT_TRUE(row.has_value()) << "key " << i;
        expectSameResult(sampleResult(), simResultFromConfig(*row));
    }
    EXPECT_EQ(check.counters().quarantined, 0u);
    EXPECT_EQ(check.okRowCount(), static_cast<std::size_t>(kKeys));
}

// ----------------------------------------------------- runner + store

namespace
{

SystemConfig
tinyConfig(const SchemeConfig &scheme = SchemeConfig::baseline())
{
    SystemConfig cfg = SystemConfig::cascadeLake(1);
    cfg.warmup_instrs = 5'000;
    cfg.sim_instrs = 20'000;
    cfg.scheme = scheme;
    return cfg;
}

} // namespace

TEST(RunnerStore, WarmStoreServesGridBitIdenticalWithoutSimulating)
{
    auto ws = workloads::singleCoreWorkloads(workloads::SetSize::Tiny);
    ASSERT_GE(ws.size(), 2u);
    ws.resize(2);
    std::vector<SystemConfig> grid{tinyConfig(),
                                   tinyConfig(SchemeConfig::tlp())};
    std::string dir = freshDir("runner_grid");

    auto run_grid = [&](StorePolicy policy) {
        Runner r(2, std::move(policy));
        for (const auto &cfg : grid)
            for (const auto &w : ws)
                r.submitSingle(w, cfg);
        std::vector<SimResult> out;
        for (const auto &cfg : grid)
            for (const auto &w : ws)
                out.push_back(r.single(w, cfg));
        return std::make_tuple(out, r.simulatedCount(), r.storeHitCount());
    };

    // No store at all: the reference results.
    auto [plain, plain_sim, plain_hits] = run_grid({});
    EXPECT_EQ(plain_sim, 4u);
    EXPECT_EQ(plain_hits, 0u);

    // Cold run populates the store...
    StorePolicy cold;
    cold.store = std::make_shared<ResultStore>(dir);
    auto [cold_out, cold_sim, cold_hits] = run_grid(cold);
    EXPECT_EQ(cold_sim, 4u);
    EXPECT_EQ(cold_hits, 0u);

    // ...and a fresh Runner on the same store simulates nothing, yet
    // reproduces the storeless run bit for bit.
    StorePolicy warm;
    warm.store = std::make_shared<ResultStore>(dir);
    auto [warm_out, warm_sim, warm_hits] = run_grid(warm);
    EXPECT_EQ(warm_sim, 0u);
    EXPECT_EQ(warm_hits, 4u);

    ASSERT_EQ(plain.size(), warm_out.size());
    for (std::size_t i = 0; i < plain.size(); ++i) {
        expectSameResult(plain[i], cold_out[i]);
        expectSameResult(plain[i], warm_out[i]);
    }
}

TEST(RunnerStore, WatchdogTimeoutBecomesFailureRowThenRetriesLater)
{
    std::string dir = freshDir("watchdog");
    const std::string key = "1c|spin|k=v\n";
    auto spin_forever = [] {
        for (;;)
            watchdog::poll();   // what Simulator::run does every 64Ki cycles
        return SimResult{};
    };

    {
        StorePolicy policy;
        policy.store = std::make_shared<ResultStore>(dir);
        policy.timeout_s = 0.05;
        Runner r(1, policy);
        r.submit(key, spin_forever, "spin|test");

        Runner::Outcome out = r.outcome(key);
        EXPECT_TRUE(out.failed);
        EXPECT_EQ(out.attempts, 2u);   // first run + one bounded retry
        EXPECT_EQ(out.result, nullptr);
        EXPECT_NE(out.error.find("wall-clock"), std::string::npos);
        EXPECT_THROW(r.get(key), SimTimeoutError);
        EXPECT_EQ(r.failedCount(), 1u);
        EXPECT_EQ(r.simulatedCount(), 0u);

        // The failure is recorded as a structured row, not an ok row.
        auto row = policy.store->load(key);
        ASSERT_TRUE(row.has_value());
        EXPECT_EQ(row->getString(kStatusKey, ""), kStatusFailed);
        EXPECT_EQ(row->getUnsigned32("attempts", 0), 2u);
        EXPECT_FALSE(row->getString("error", "").empty());
    }

    // A later run with a usable budget treats the failure row as a
    // miss, recomputes, and overwrites it with an ok row.
    {
        StorePolicy policy;
        policy.store = std::make_shared<ResultStore>(dir);
        policy.timeout_s = 60.0;
        Runner r(1, policy);
        r.submit(key, [] { return sampleResult(); }, "spin|test");
        Runner::Outcome out = r.outcome(key);
        EXPECT_FALSE(out.failed);
        EXPECT_FALSE(out.from_store);
        ASSERT_NE(out.result, nullptr);
        expectSameResult(sampleResult(), *out.result);
        EXPECT_EQ(r.simulatedCount(), 1u);

        auto row = policy.store->load(key);
        ASSERT_TRUE(row.has_value());
        EXPECT_EQ(row->getString(kStatusKey, ""), kStatusOk);
    }
}

TEST(RunnerStore, CompletionObserverStreamsEveryPoint)
{
    std::string dir = freshDir("observer");
    StorePolicy policy;
    policy.store = std::make_shared<ResultStore>(dir);
    Runner r(1, policy);
    std::vector<std::string> labels;
    std::vector<bool> from_store;
    r.setOnComplete([&](const Runner::CompletionRecord &rec) {
        labels.push_back(rec.label);
        from_store.push_back(rec.from_store);
        EXPECT_NE(rec.result, nullptr);
    });
    r.submit("k1", [] { return sampleResult(); }, "p1");
    r.submit("k2", [] { return sampleResult(); }, "p2");
    r.get("k1");
    r.get("k2");
    ASSERT_EQ(labels.size(), 2u);
    EXPECT_FALSE(from_store[0]);

    // A second runner on the warm store still streams completions, now
    // flagged as store-served — this is what keeps --out JSONL complete
    // across --resume.
    Runner r2(1, policy);
    std::size_t streamed = 0;
    r2.setOnComplete([&](const Runner::CompletionRecord &rec) {
        ++streamed;
        EXPECT_TRUE(rec.from_store);
    });
    r2.submit("k1", [] { return sampleResult(); }, "p1");
    r2.get("k1");
    EXPECT_EQ(streamed, 1u);
}
