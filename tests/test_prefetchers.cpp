/** Tests for the prefetchers: next-line, IPCP, Berti, SPP, and factory. */

#include <gtest/gtest.h>

#include "common/rng.hh"

#include "prefetch/berti.hh"
#include "prefetch/factory.hh"
#include "prefetch/ipcp.hh"
#include "prefetch/next_line.hh"
#include "prefetch/spp.hh"

using namespace tlpsim;

namespace
{

PrefetchTrigger
loadAt(Addr vaddr, Addr ip, Cycle now = 0, Addr paddr = 0)
{
    PrefetchTrigger t;
    t.vaddr = vaddr;
    t.paddr = paddr == 0 ? vaddr : paddr;
    t.ip = ip;
    t.type = AccessType::Load;
    t.cache_hit = false;
    t.now = now;
    return t;
}

std::vector<PrefetchCandidate>
access(Prefetcher &pf, const PrefetchTrigger &t)
{
    std::vector<PrefetchCandidate> out;
    pf.onAccess(t, out);
    return out;
}

} // namespace

TEST(NextLine, PrefetchesNextBlocks)
{
    NextLinePrefetcher pf(2);
    auto out = access(pf, loadAt(0x1000, 0x400100));
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].addr, 0x1040u);
    EXPECT_EQ(out[1].addr, 0x1080u);
}

TEST(NextLine, IgnoresNonDemand)
{
    NextLinePrefetcher pf;
    PrefetchTrigger t = loadAt(0x1000, 0x400100);
    t.type = AccessType::Writeback;
    std::vector<PrefetchCandidate> out;
    pf.onAccess(t, out);
    EXPECT_TRUE(out.empty());
}

TEST(Ipcp, DetectsConstantStride)
{
    IpcpPrefetcher pf;
    Addr ip = 0x400100;
    Addr base = 0x10000;
    std::vector<PrefetchCandidate> out;
    // Stride of 2 lines; after confidence builds, CS class fires.
    for (int i = 0; i < 8; ++i)
        out = access(pf, loadAt(base + static_cast<Addr>(i) * 128, ip));
    ASSERT_GE(out.size(), 2u);
    EXPECT_EQ(out[0].addr, base + 8 * 128);
    EXPECT_EQ(out[1].addr, base + 9 * 128);
}

TEST(Ipcp, ColdIpFallsBackToNextLine)
{
    IpcpPrefetcher pf;
    auto out = access(pf, loadAt(0x10000, 0x400100));
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].addr, 0x10040u);
}

TEST(Ipcp, StopsAtPageBoundary)
{
    IpcpPrefetcher pf;
    Addr ip = 0x400200;
    std::vector<PrefetchCandidate> out;
    // Stride toward the end of the page; every candidate must stay in
    // the page of the access that triggered it.
    Addr last = 0;
    for (int i = 0; i < 10; ++i) {
        last = 0x10000 + 0xf00 + static_cast<Addr>(i) * 0x40;
        out = access(pf, loadAt(last, ip));
        for (const auto &c : out)
            EXPECT_EQ(pageNumber(c.addr), pageNumber(last));
    }
}

TEST(Ipcp, AllCandidatesFillL1)
{
    IpcpPrefetcher pf;
    Addr ip = 0x400300;
    for (int i = 0; i < 10; ++i) {
        for (const auto &c :
             access(pf, loadAt(0x20000 + static_cast<Addr>(i) * 64, ip))) {
            EXPECT_EQ(c.fill_level, 1);
        }
    }
}

TEST(Ipcp, GlobalStreamOnDenseRegion)
{
    IpcpPrefetcher::Params p;
    p.gs_dense_threshold = 8;
    IpcpPrefetcher pf(p);
    // Touch a dense region from many different IPs (defeats per-IP CS).
    std::vector<PrefetchCandidate> out;
    for (int i = 0; i < 16; ++i) {
        out = access(pf, loadAt(0x30000 + static_cast<Addr>(i) * 64,
                                0x400000 + static_cast<Addr>(i) * 4));
    }
    // Dense region with cold IPs: at least next-line momentum expected.
    EXPECT_FALSE(out.empty());
}

TEST(Ipcp, StorageScalesWithShift)
{
    IpcpPrefetcher::Params p;
    IpcpPrefetcher base(p);
    p.table_scale_shift = 2;
    IpcpPrefetcher big(p);
    EXPECT_GT(big.storage().totalBits(), base.storage().totalBits() * 3);
}

TEST(Berti, LearnsTimelyDelta)
{
    BertiPrefetcher::Params p;
    p.issue_confidence = 2;
    BertiPrefetcher pf(p);
    Addr ip = 0x400400;
    // Accesses with stride 1 line and enough time between them to make
    // the delta timely (window default 60 cycles).
    std::vector<PrefetchCandidate> out;
    for (int i = 0; i < 20; ++i)
        out = access(pf, loadAt(0x40000 + static_cast<Addr>(i) * 64, ip,
                                Cycle{100} * static_cast<Cycle>(i)));
    ASSERT_FALSE(out.empty());
    // All candidates are forward deltas within the page.
    for (const auto &c : out)
        EXPECT_GT(c.addr, 0x40000u);
}

TEST(Berti, NoPrefetchWhenDeltasNotTimely)
{
    BertiPrefetcher::Params p;
    p.initial_window = 1000;   // nothing is ever timely at 1-cycle gaps
    BertiPrefetcher pf(p);
    Addr ip = 0x400500;
    std::vector<PrefetchCandidate> out;
    for (int i = 0; i < 20; ++i)
        out = access(pf, loadAt(0x50000 + static_cast<Addr>(i) * 64, ip,
                                static_cast<Cycle>(i)));
    EXPECT_TRUE(out.empty());
}

TEST(Berti, WindowAdaptsToObservedLatency)
{
    BertiPrefetcher pf;
    Cycle before = pf.timelinessWindow();
    for (int i = 0; i < 50; ++i)
        pf.onFill(0x1000, 0x400100, MemLevel::Dram, 300);
    EXPECT_GT(pf.timelinessWindow(), before);
    // Non-DRAM fills must not move the window.
    Cycle w = pf.timelinessWindow();
    pf.onFill(0x1000, 0x400100, MemLevel::L2C, 10);
    EXPECT_EQ(pf.timelinessWindow(), w);
}

TEST(Berti, IssuesFewerThanIpcpOnIrregular)
{
    // The paper's contrast: Berti is conservative, IPCP aggressive.
    IpcpPrefetcher ipcp;
    BertiPrefetcher berti;
    Rng rng(3);
    std::size_t ipcp_total = 0;
    std::size_t berti_total = 0;
    for (int i = 0; i < 2000; ++i) {
        Addr a = 0x100000 + (rng.below(1 << 16)) * 64;
        ipcp_total += access(ipcp, loadAt(a, 0x400600,
                                          static_cast<Cycle>(i) * 10))
                          .size();
        berti_total += access(berti, loadAt(a, 0x400600,
                                            static_cast<Cycle>(i) * 10))
                           .size();
    }
    EXPECT_GT(ipcp_total, berti_total * 2);
}

TEST(Spp, LearnsDeltaPatternWithinPage)
{
    SppPrefetcher pf;
    Addr page = 0x7000000;
    std::vector<PrefetchCandidate> out;
    // Repeated +1 line pattern across several pages trains the PT.
    for (int p = 0; p < 8; ++p) {
        for (int i = 0; i < 32; ++i) {
            out = access(pf, loadAt(0, 0x400700, 0,
                                    page + static_cast<Addr>(p) * kPageSize
                                        + static_cast<Addr>(i) * 64));
        }
    }
    ASSERT_FALSE(out.empty());
    // Lookahead must follow the +1 path.
    EXPECT_EQ(out[0].addr % kBlockSize, 0u);
}

TEST(Spp, StaysWithinPage)
{
    SppPrefetcher pf;
    Addr page = 0x8000000;
    std::vector<PrefetchCandidate> all;
    for (int p = 0; p < 4; ++p) {
        for (int i = 0; i < 64; ++i) {
            std::vector<PrefetchCandidate> out;
            pf.onAccess(loadAt(0, 0x400800, 0,
                               page + static_cast<Addr>(p) * kPageSize + static_cast<Addr>(i) * 64),
                        out);
            for (auto &c : out) {
                EXPECT_EQ(pageNumber(c.addr),
                          pageNumber(page + static_cast<Addr>(p) * kPageSize));
                all.push_back(c);
            }
        }
    }
    EXPECT_FALSE(all.empty());
}

TEST(Spp, ConfidenceDecaysWithDepth)
{
    SppPrefetcher pf;
    Addr page = 0x9000000;
    std::vector<PrefetchCandidate> out;
    for (int p = 0; p < 8; ++p) {
        for (int i = 0; i < 48; ++i) {
            out.clear();
            pf.onAccess(loadAt(0, 0x400900, 0,
                               page + static_cast<Addr>(p) * kPageSize + static_cast<Addr>(i) * 64),
                        out);
        }
    }
    ASSERT_GE(out.size(), 2u);
    EXPECT_GE(SppPrefetcher::metaConfidence(out[0].metadata),
              SppPrefetcher::metaConfidence(out.back().metadata));
}

TEST(Spp, AggressiveModePrefetchesDeeper)
{
    SppPrefetcher normal;
    SppPrefetcher::Params ap;
    ap.aggressive = true;
    SppPrefetcher aggressive(ap);

    auto run = [](SppPrefetcher &pf) {
        std::size_t total = 0;
        for (int p = 0; p < 8; ++p) {
            for (int i = 0; i < 48; ++i) {
                std::vector<PrefetchCandidate> out;
                pf.onAccess(loadAt(0, 0x400a00, 0,
                                   0xa000000 + static_cast<Addr>(p) * kPageSize
                                       + static_cast<Addr>(i) * 64),
                            out);
                total += out.size();
            }
        }
        return total;
    };
    EXPECT_GT(run(aggressive), run(normal));
}

TEST(Spp, MetadataRoundTrips)
{
    auto m = SppPrefetcher::packMeta(77, 0xabc, 5);
    EXPECT_EQ(SppPrefetcher::metaConfidence(m), 77u);
    EXPECT_EQ(SppPrefetcher::metaSignature(m), 0xabcu);
    EXPECT_EQ(SppPrefetcher::metaDepth(m), 5u);
}

TEST(Spp, LearnsFromPrefetchTypeAccesses)
{
    // The L2 prefetcher must also learn from L1D prefetches passing by
    // (this is what lets SPP run ahead of streams).
    SppPrefetcher pf;
    Addr page = 0xb000000;
    std::vector<PrefetchCandidate> out;
    for (int p = 0; p < 8; ++p) {
        for (int i = 0; i < 32; ++i) {
            PrefetchTrigger t = loadAt(0, 0x400b00, 0,
                                       page + static_cast<Addr>(p) * kPageSize
                                           + static_cast<Addr>(i) * 64);
            t.type = AccessType::Prefetch;
            out.clear();
            pf.onAccess(t, out);
        }
    }
    EXPECT_FALSE(out.empty());
}

TEST(Factory, CreatesRequestedKinds)
{
    EXPECT_EQ(makeL1Prefetcher(L1Prefetcher::None), nullptr);
    EXPECT_STREQ(makeL1Prefetcher(L1Prefetcher::Ipcp)->name(), "ipcp");
    EXPECT_STREQ(makeL1Prefetcher(L1Prefetcher::Berti)->name(), "berti");
    EXPECT_STREQ(makeL1Prefetcher(L1Prefetcher::NextLine)->name(),
                 "next_line");
    EXPECT_EQ(makeL2Prefetcher(L2Prefetcher::None), nullptr);
    EXPECT_STREQ(makeL2Prefetcher(L2Prefetcher::Spp)->name(), "spp");
    EXPECT_STREQ(makeL2Prefetcher(L2Prefetcher::SppAggressive)->name(),
                 "spp");
}

TEST(Factory, NamesForReporting)
{
    EXPECT_STREQ(toString(L1Prefetcher::Ipcp), "ipcp");
    EXPECT_STREQ(toString(L1Prefetcher::Berti), "berti");
    EXPECT_STREQ(toString(L2Prefetcher::SppAggressive), "spp_aggressive");
}
